package store

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"chorusvm/internal/obs"
)

// Flate is a compressing backend: each materialized page is held as a
// DEFLATE blob (stdlib compress/flate) plus a checksum of the
// uncompressed content. It trades CPU on the read/write path for
// physical bytes — the zswap/zram trade — and tracks logical vs physical
// bytes so the ratio is observable.
type Flate struct {
	ps    int64
	level int

	mu       sync.Mutex
	pages    map[int64][]byte // compressed page blobs
	crcs     map[int64]uint32 // crc32 of the uncompressed page
	physical int64            // total compressed bytes held
	closed   bool

	// tr observes compression/decompression time (nil-safe); set before
	// first use.
	tr *obs.Tracer
}

var _ Backend = (*Flate)(nil)

// NewFlate creates a compressing backend. Pages compress with
// flate.BestSpeed: the backend sits on the pullIn/pushOut path, where
// latency matters more than the last percent of ratio.
func NewFlate(pageSize int) *Flate {
	return &Flate{
		ps:    int64(pageSize),
		level: flate.BestSpeed,
		pages: make(map[int64][]byte),
		crcs:  make(map[int64]uint32),
	}
}

// SetTracer attaches an observability tracer (nil disables; call before
// the backend starts serving I/O).
func (z *Flate) SetTracer(t *obs.Tracer) { z.tr = t }

// PageSize implements Backend.
func (z *Flate) PageSize() int { return int(z.ps) }

// compressPage deflates one page; z.mu held (the blob map is being
// updated around it).
func (z *Flate) compressPage(pg []byte) ([]byte, error) {
	start := z.tr.Clock()
	var b bytes.Buffer
	w, err := flate.NewWriter(&b, z.level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(pg); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	z.tr.Span(obs.KindStoreCompress, obs.OpStoreCompress, int64(len(pg)), int64(b.Len()), start)
	return b.Bytes(), nil
}

// decompressPage inflates one page blob into dst and verifies the
// recorded checksum; a blob that fails to inflate or mismatches is
// ErrCorrupt.
func (z *Flate) decompressPage(po int64, blob []byte, dst []byte) error {
	start := z.tr.Clock()
	r := flate.NewReader(bytes.NewReader(blob))
	if _, err := io.ReadFull(r, dst); err != nil {
		return fmt.Errorf("inflate failed (%v): %w", err, corruptAt("flate", po))
	}
	r.Close()
	if crc32.ChecksumIEEE(dst) != z.crcs[po] {
		return corruptAt("flate", po)
	}
	z.tr.Span(obs.KindStoreCompress, obs.OpStoreCompress, int64(len(blob)), int64(len(dst)), start)
	return nil
}

// ReadAt implements Backend.
func (z *Flate) ReadAt(off int64, buf []byte) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.closed {
		return ErrClosed
	}
	scratch := make([]byte, z.ps)
	return forEachPage(z.ps, off, int64(len(buf)), func(po, b, bufOff, n int64) error {
		blob, ok := z.pages[po]
		if !ok {
			clear(buf[bufOff : bufOff+n])
			return nil
		}
		if err := z.decompressPage(po, blob, scratch); err != nil {
			return err
		}
		copy(buf[bufOff:bufOff+n], scratch[b:b+n])
		return nil
	})
}

// WriteAt implements Backend.
func (z *Flate) WriteAt(off int64, data []byte) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.closed {
		return ErrClosed
	}
	scratch := make([]byte, z.ps)
	return forEachPage(z.ps, off, int64(len(data)), func(po, b, bufOff, n int64) error {
		// Partial pages read-modify-write through the existing blob.
		if n < z.ps {
			if blob, ok := z.pages[po]; ok {
				if err := z.decompressPage(po, blob, scratch); err != nil {
					return err
				}
			} else {
				clear(scratch)
			}
		}
		copy(scratch[b:b+n], data[bufOff:bufOff+n])
		blob, err := z.compressPage(scratch)
		if err != nil {
			return err
		}
		if old, ok := z.pages[po]; ok {
			z.physical -= int64(len(old))
		}
		z.pages[po] = blob
		z.crcs[po] = crc32.ChecksumIEEE(scratch)
		z.physical += int64(len(blob))
		return nil
	})
}

// Truncate implements Backend.
func (z *Flate) Truncate(size int64) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.closed {
		return ErrClosed
	}
	for po, blob := range z.pages {
		if po >= size {
			z.physical -= int64(len(blob))
			delete(z.pages, po)
			delete(z.crcs, po)
		}
	}
	return nil
}

// Sync implements Backend.
func (z *Flate) Sync() error {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.closed {
		return ErrClosed
	}
	return nil
}

// DiscardPage implements Discarder.
func (z *Flate) DiscardPage(off int64) error {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.closed {
		return ErrClosed
	}
	po := off &^ (z.ps - 1)
	if blob, ok := z.pages[po]; ok {
		z.physical -= int64(len(blob))
		delete(z.pages, po)
		delete(z.crcs, po)
	}
	return nil
}

// PageOffsets implements PageLister.
func (z *Flate) PageOffsets() []int64 {
	z.mu.Lock()
	defer z.mu.Unlock()
	offs := make([]int64, 0, len(z.pages))
	for po := range z.pages {
		offs = append(offs, po)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

// Pages implements Backend.
func (z *Flate) Pages() int {
	z.mu.Lock()
	defer z.mu.Unlock()
	return len(z.pages)
}

// Close implements Backend.
func (z *Flate) Close() error {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.closed = true
	z.pages, z.crcs, z.physical = nil, nil, 0
	return nil
}

// BytesLogical returns the uncompressed size of the held pages.
func (z *Flate) BytesLogical() int64 {
	z.mu.Lock()
	defer z.mu.Unlock()
	return int64(len(z.pages)) * z.ps
}

// BytesPhysical returns the compressed bytes actually held.
func (z *Flate) BytesPhysical() int64 {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.physical
}
