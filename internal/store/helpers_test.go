package store

// Shared helpers for the in-package test files (engine, faulty, file,
// readasync). The cross-backend conformance battery itself lives in
// storetest and runs from conformance_test.go (package store_test).

// pattern fills n bytes with a tag-derived deterministic pattern.
func pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

// psTest is the page size the in-package tests run at.
const psTest = 256
