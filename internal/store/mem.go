package store

import (
	"sort"
	"sync"
)

// Mem is the in-memory backend: a sparse map of pages standing in for a
// disk. It is the representation the original seg.Store used, moved
// behind the Backend interface.
type Mem struct {
	ps int64

	mu     sync.Mutex
	pages  map[int64][]byte // keyed by page-aligned offset
	closed bool
}

var _ Backend = (*Mem)(nil)

// NewMem creates an in-memory backend with the given page size.
func NewMem(pageSize int) *Mem {
	return &Mem{ps: int64(pageSize), pages: make(map[int64][]byte)}
}

// PageSize implements Backend.
func (m *Mem) PageSize() int { return int(m.ps) }

// ReadAt implements Backend.
func (m *Mem) ReadAt(off int64, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return forEachPage(m.ps, off, int64(len(buf)), func(po, b, bufOff, n int64) error {
		if pg, ok := m.pages[po]; ok {
			copy(buf[bufOff:bufOff+n], pg[b:b+n])
		} else {
			clear(buf[bufOff : bufOff+n])
		}
		return nil
	})
}

// WriteAt implements Backend.
func (m *Mem) WriteAt(off int64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return forEachPage(m.ps, off, int64(len(data)), func(po, b, bufOff, n int64) error {
		pg, ok := m.pages[po]
		if !ok {
			pg = make([]byte, m.ps)
			m.pages[po] = pg
		}
		copy(pg[b:b+n], data[bufOff:bufOff+n])
		return nil
	})
}

// Truncate implements Backend.
func (m *Mem) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for po := range m.pages {
		if po >= size {
			delete(m.pages, po)
		}
	}
	return nil
}

// Sync implements Backend (RAM is as durable as it gets).
func (m *Mem) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// DiscardPage implements Discarder.
func (m *Mem) DiscardPage(off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	delete(m.pages, off&^(m.ps-1))
	return nil
}

// PageOffsets implements PageLister.
func (m *Mem) PageOffsets() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	offs := make([]int64, 0, len(m.pages))
	for po := range m.pages {
		offs = append(offs, po)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

// Pages implements Backend.
func (m *Mem) Pages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// Close implements Backend.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	return nil
}
