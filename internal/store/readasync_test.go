package store

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestEngineReadAsync(t *testing.T) {
	e := NewEngine(NewMem(psTest), Options{})
	want := make([]byte, psTest)
	for i := range want {
		want[i] = byte(i * 3)
	}
	if err := e.Write(0, want); err != nil {
		t.Fatal(err)
	}
	e.Barrier()

	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, 1)
	e.ReadAsync(0, psTest, func(data []byte, err error) {
		ch <- result{data, err}
	})
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("ReadAsync: %v", r.err)
		}
		if !bytes.Equal(r.data, want) {
			t.Fatal("ReadAsync returned wrong bytes")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadAsync completion never arrived")
	}
	if st := e.StatsSnapshot(); st.AsyncReads != 1 {
		t.Fatalf("AsyncReads=%d, want 1", st.AsyncReads)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// After Close the completion still fires — with ErrClosed.
	ch2 := make(chan error, 1)
	e.ReadAsync(0, psTest, func(data []byte, err error) { ch2 <- err })
	select {
	case err := <-ch2:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("ReadAsync after Close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadAsync after Close never completed")
	}
}

// TestEngineReadAsyncRetries: async reads own their retry policy — a
// backend that fails transiently a few times still completes the read
// successfully.
func TestEngineReadAsyncRetries(t *testing.T) {
	f := NewFaulty(NewMem(psTest), FaultConfig{Seed: 7, Prob: 1, MaxConsecutive: 2})
	e := NewEngine(f, Options{})
	pol := DefaultPolicy()
	pol.Base, pol.Max = time.Microsecond, time.Microsecond
	e.SetRetry(pol)
	want := make([]byte, psTest)
	for i := range want {
		want[i] = byte(i ^ 0x5A)
	}
	if err := e.Write(0, want); err != nil {
		t.Fatal(err)
	}
	e.Barrier()
	ch := make(chan error, 1)
	var got []byte
	e.ReadAsync(0, psTest, func(data []byte, err error) {
		got = data
		ch <- err
	})
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("ReadAsync with transient faults: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadAsync never completed")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ReadAsync returned wrong bytes after retries")
	}
	if st := e.StatsSnapshot(); st.Retries == 0 {
		t.Fatal("expected retry activity")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{}, true},
		{Config{Kind: "mem"}, true},
		{Config{Kind: "flate"}, true},
		{Config{Kind: "file", Dir: "/tmp/x"}, true},
		{Config{Kind: "file"}, false},
		{Config{Kind: "bogus"}, false},
		{Config{FaultProb: 0.5}, true},
		{Config{FaultProb: -0.1}, false},
		{Config{FaultProb: 1.5}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c.cfg, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c.cfg)
		}
	}
}
