package store

import "time"

// Policy is a bounded exponential retry/backoff. It is used in two
// places: the engine's writeback workers (which have no caller to retry
// for them) and the segment-manager upcalls in internal/seg (so a pullIn
// or pushOut survives a transient device error and only reports permanent
// failures up the GMI error path).
type Policy struct {
	// Attempts is the total number of tries (first try included).
	Attempts int
	// Base is the first backoff delay; it doubles per retry up to Max.
	Base, Max time.Duration
	// Sleep replaces time.Sleep, for deterministic tests. Nil means
	// time.Sleep.
	Sleep func(time.Duration)
	// OnRetry observes each retry decision: the attempt that failed
	// (1-based), the backoff about to be taken, and the error. Stats and
	// tracing hang off this hook.
	OnRetry func(attempt int, backoff time.Duration, err error)
}

// DefaultPolicy is the retry schedule used when a zero Policy is given:
// 6 attempts backing off 50µs → 5ms, ~10ms worst-case added latency.
func DefaultPolicy() Policy {
	return Policy{Attempts: 6, Base: 50 * time.Microsecond, Max: 5 * time.Millisecond}
}

// norm fills zero fields from DefaultPolicy.
func (p Policy) norm() Policy {
	d := DefaultPolicy()
	if p.Attempts <= 0 {
		p.Attempts = d.Attempts
	}
	if p.Base <= 0 {
		p.Base = d.Base
	}
	if p.Max <= 0 {
		p.Max = d.Max
	}
	return p
}

// Do runs op, retrying transient failures (IsTransient) with exponential
// backoff. Permanent errors return immediately; a transient error that
// survives every attempt is returned as-is (still matching ErrTransient,
// but by then every layer has given up, so callers treat it as
// permanent).
func (p Policy) Do(op func() error) error {
	p = p.norm()
	backoff := p.Base
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= p.Attempts {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, backoff, err)
		}
		if p.Sleep != nil {
			p.Sleep(backoff)
		} else {
			time.Sleep(backoff)
		}
		if backoff *= 2; backoff > p.Max {
			backoff = p.Max
		}
	}
}
