package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPolicyRetriesOnlyTransient(t *testing.T) {
	perm := errors.New("permanent")
	p := DefaultPolicy()
	p.Sleep = func(time.Duration) {}
	calls := 0
	err := p.Do(func() error { calls++; return perm })
	if !errors.Is(err, perm) {
		t.Fatalf("Do = %v, want the permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error attempted %d times, want 1", calls)
	}

	calls = 0
	err = p.Do(func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flake %d: %w", calls, ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success after transient flakes", err)
	}
	if calls != 3 {
		t.Fatalf("attempted %d times, want 3", calls)
	}
}

func TestPolicyExhaustionReturnsLastError(t *testing.T) {
	p := Policy{Attempts: 4, Base: time.Microsecond, Max: time.Millisecond}
	p.Sleep = func(time.Duration) {}
	calls := 0
	retries := 0
	p.OnRetry = func(attempt int, backoff time.Duration, err error) { retries++ }
	err := p.Do(func() error {
		calls++
		return fmt.Errorf("flake %d: %w", calls, ErrTransient)
	})
	if calls != 4 {
		t.Fatalf("attempted %d times, want 4", calls)
	}
	if retries != 3 {
		t.Fatalf("OnRetry fired %d times, want 3", retries)
	}
	if err == nil || !IsTransient(err) {
		t.Fatalf("Do = %v, want the last transient error", err)
	}
	if got := err.Error(); got != "flake 4: "+ErrTransient.Error() {
		t.Fatalf("Do returned %q, want the final attempt's error", got)
	}
}

func TestPolicyBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{Attempts: 8, Base: time.Millisecond, Max: 4 * time.Millisecond}
	var slept []time.Duration
	p.Sleep = func(d time.Duration) { slept = append(slept, d) }
	_ = p.Do(func() error { return ErrTransient })
	if len(slept) != 7 {
		t.Fatalf("slept %d times, want 7", len(slept))
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] < slept[i-1] && slept[i-1] < 4*time.Millisecond {
			t.Fatalf("backoff shrank before the cap: %v", slept)
		}
	}
	for _, d := range slept {
		if d > 4*time.Millisecond {
			t.Fatalf("backoff %v exceeds Max", d)
		}
	}
	if slept[0] != time.Millisecond {
		t.Fatalf("first backoff = %v, want Base", slept[0])
	}
	if slept[len(slept)-1] != 4*time.Millisecond {
		t.Fatalf("final backoff = %v, want Max", slept[len(slept)-1])
	}
}
