// Package store is the backing-store subsystem: the secondary-storage
// tier the paper assigns to mappers ("the segment representation is the
// mapper's business", section 3.1). Everything above it — segment
// managers in internal/seg, and through them both memory managers — sees
// only the page-granular Backend interface, so how pages are represented
// (a RAM map, a page file on disk, compressed blobs) is invisible to the
// VM layers, exactly the separation the paper draws between the memory
// manager and the external mappers that own real devices.
//
// The package provides:
//
//   - Backend: the narrow interface (ReadAt/WriteAt/Truncate/Sync/Pages).
//   - Mem, File, Flate: three implementations — the in-memory sparse page
//     map, a persistent page file with a free-extent slot allocator, and
//     a compressing store (compress/flate) tracking logical vs physical
//     bytes.
//   - Engine: an async I/O layer over any Backend — a bounded worker
//     pool that coalesces adjacent writeback pages into batched WriteAts,
//     a sequential readahead prefetcher, and per-page checksums verified
//     on every read (corruption surfaces as ErrCorrupt, never as a
//     silent wrong byte).
//   - Faulty: a deterministic, seeded fault-injection wrapper (transient
//     errors and latency spikes) for exercising the retry paths.
//   - Policy: the bounded exponential retry/backoff used by the engine's
//     writeback workers and by segment-manager upcalls.
package store

import (
	"errors"
	"fmt"
)

// Backend is a page-granular secondary-storage object. Offsets and
// lengths are byte counts; implementations accept arbitrary (unaligned,
// page-straddling) ranges and present never-written bytes as zero.
// All implementations in this package are safe for concurrent use.
type Backend interface {
	// PageSize returns the page size the backend allocates in.
	PageSize() int

	// ReadAt fills buf from [off, off+len(buf)), zero for holes.
	ReadAt(off int64, buf []byte) error

	// WriteAt stores data at [off, off+len(data)), materializing pages
	// as needed.
	WriteAt(off int64, data []byte) error

	// Truncate discards all pages at or beyond size (Truncate(0) frees
	// everything), releasing their storage.
	Truncate(size int64) error

	// Sync makes previously written data durable (a no-op for purely
	// in-memory backends).
	Sync() error

	// Pages returns how many distinct pages are materialized.
	Pages() int

	// Close releases the backend; for durable backends it implies Sync.
	Close() error
}

// Discarder is an optional Backend extension: dropping a single
// materialized page (Truncate can only drop suffixes). A tiered store
// uses it to remove a page from the tier it is migrating out of. The
// in-package backends (Mem, File, Flate) all implement it.
type Discarder interface {
	// DiscardPage releases the page at the page-aligned offset off; a
	// hole there is a no-op. Subsequent reads see zeroes.
	DiscardPage(off int64) error
}

// PageLister is an optional Backend extension: enumerating the
// materialized page offsets. A tiered store uses it on reopen to learn
// which pages its persistent cold tier still holds.
type PageLister interface {
	// PageOffsets returns the page-aligned offsets of every materialized
	// page, in ascending order.
	PageOffsets() []int64
}

// Advice classifies a usage hint flowing down from the VM's replacement
// policy to an advising backend (see Adviser).
type Advice int

const (
	// AdviseCold marks pages the replacement policy just evicted: the VM
	// gave their frames away, so their backing copies should sink a tier.
	AdviseCold Advice = iota
	// AdviseIdle marks resident pages that went unreferenced across a
	// whole policy tick — not evicted yet, but cooling.
	AdviseIdle
)

// Adviser is an optional Backend extension: receiving usage hints from
// the layers above. Advise is a hint, never a command — implementations
// MUST NOT block (callers may hold VM-internal locks); they enqueue the
// hint and act on it later (see tier.Backend's migrator).
type Adviser interface {
	Advise(off, size int64, a Advice)
}

// Errors of the storage tier. ErrTransient classifies failures worth
// retrying (see Policy); anything else is permanent and propagates up
// the upcall chain as a gmi.ErrIO.
var (
	// ErrCorrupt is returned when a page's content does not match its
	// recorded checksum: the read is refused rather than returning a
	// silently wrong byte.
	ErrCorrupt = errors.New("store: page checksum mismatch")

	// ErrTransient classifies injected or environmental failures that a
	// retry may clear; match with IsTransient / errors.Is.
	ErrTransient = errors.New("store: transient I/O failure")

	// ErrClosed flags use of a closed backend or engine.
	ErrClosed = errors.New("store: closed")
)

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// corruptAt builds the canonical ErrCorrupt for a page offset.
func corruptAt(what string, off int64) error {
	return fmt.Errorf("%s page at %#x: %w", what, off, ErrCorrupt)
}

// forEachPage chunks [off, off+n) into per-page pieces: fn receives the
// page-aligned page offset po, the intra-page byte offset b, and the
// chunk's position/length within the caller's buffer.
func forEachPage(pageSize, off, n int64, fn func(po, b, bufOff, length int64) error) error {
	for done := int64(0); done < n; {
		po := (off + done) &^ (pageSize - 1)
		b := off + done - po
		l := pageSize - b
		if rem := n - done; l > rem {
			l = rem
		}
		if err := fn(po, b, done, l); err != nil {
			return err
		}
		done += l
	}
	return nil
}
