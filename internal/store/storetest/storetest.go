// Package storetest exports the cross-backend conformance battery for
// store.Backend implementations. Every backend — the built-ins, the
// tiered composition, the remote client — must pass the same table, so
// a new backend starts by calling Run from its own test file:
//
//	func TestConformance(t *testing.T) {
//		storetest.Run(t, func(t *testing.T, ps int) store.Backend { ... })
//	}
//
// Persistent backends additionally call RunReopen, which proves content
// survives Close and a fresh open over the same state.
package storetest

import (
	"bytes"
	"errors"
	"testing"

	"chorusvm/internal/store"
)

// PageSize is the page size the battery runs at: small enough that the
// boundary cases stay readable, large enough to be page-like.
const PageSize = 256

// Maker builds one fresh backend for a subtest. Cleanup (Close) is the
// battery's job; temp state should hang off t.TempDir.
type Maker func(t *testing.T, pageSize int) store.Backend

// Pattern fills n bytes with a tag-derived deterministic pattern —
// distinct tags give distinct, non-trivial page content.
func Pattern(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

// Run drives the full conformance battery against backends built by mk.
func Run(t *testing.T, mk Maker) {
	t.Run("ZeroFill", func(t *testing.T) { testZeroFill(t, mk(t, PageSize)) })
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, mk(t, PageSize)) })
	t.Run("Boundaries", func(t *testing.T) { testBoundaries(t, mk(t, PageSize)) })
	t.Run("Truncate", func(t *testing.T) { testTruncate(t, mk(t, PageSize)) })
	t.Run("SyncAndClose", func(t *testing.T) { testSyncAndClose(t, mk(t, PageSize)) })
	t.Run("Sparse", func(t *testing.T) { testSparse(t, mk(t, PageSize)) })
	t.Run("Engine", func(t *testing.T) { testEngine(t, mk(t, PageSize)) })
}

// RunReopen proves close/reopen persistence: content written through one
// backend instance must be readable through a second instance opened
// over the same durable state. open is called at least twice; each call
// must return a backend over the same underlying store.
func RunReopen(t *testing.T, open func(t *testing.T) store.Backend) {
	b := open(t)
	want := Pattern(0x5A, 3*PageSize)
	if err := b.WriteAt(int64(PageSize/2), want); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	// A hole below, content above: both must survive.
	if err := b.WriteAt(int64(10*PageSize), Pattern(0x77, PageSize)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	b = open(t)
	defer b.Close()
	got := make([]byte, len(want))
	if err := b.ReadAt(int64(PageSize/2), got); err != nil {
		t.Fatalf("ReadAt after reopen: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("content did not survive reopen")
	}
	got = make([]byte, PageSize)
	if err := b.ReadAt(int64(10*PageSize), got); err != nil {
		t.Fatalf("ReadAt after reopen: %v", err)
	}
	if !bytes.Equal(got, Pattern(0x77, PageSize)) {
		t.Fatalf("sparse page did not survive reopen")
	}
	hole := make([]byte, PageSize)
	if err := b.ReadAt(int64(5*PageSize), hole); err != nil {
		t.Fatalf("ReadAt hole after reopen: %v", err)
	}
	for i, v := range hole {
		if v != 0 {
			t.Fatalf("hole byte %d: got %#x, want 0 after reopen", i, v)
		}
	}
}

func testZeroFill(t *testing.T, b store.Backend) {
	defer b.Close()
	buf := Pattern(0xFF, 3*PageSize)
	if err := b.ReadAt(100, buf); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("byte %d: got %#x, want 0 (never-written range)", i, v)
		}
	}
	if b.Pages() != 0 {
		t.Fatalf("Pages() = %d after pure reads, want 0", b.Pages())
	}
}

func testRoundTrip(t *testing.T, b store.Backend) {
	defer b.Close()
	want := Pattern(0x11, 4*PageSize)
	if err := b.WriteAt(0, want); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(want))
	if err := b.ReadAt(0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip mismatch")
	}
	if b.Pages() != 4 {
		t.Fatalf("Pages() = %d, want 4", b.Pages())
	}
}

// testBoundaries drives the partial-page and page-straddling paths:
// sub-page writes at both edges of a page, a write covering a page tail
// plus the next page's head, and reads at the same odd offsets,
// interleaved with full-page content to detect neighbour clobbering.
func testBoundaries(t *testing.T, b store.Backend) {
	defer b.Close()
	// Model of the backend's logical content.
	model := make([]byte, 6*PageSize)
	write := func(off int64, data []byte) {
		t.Helper()
		if err := b.WriteAt(off, data); err != nil {
			t.Fatalf("WriteAt(%d, %d bytes): %v", off, len(data), err)
		}
		copy(model[off:], data)
	}
	check := func(off int64, n int) {
		t.Helper()
		got := make([]byte, n)
		if err := b.ReadAt(off, got); err != nil {
			t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
		}
		if !bytes.Equal(got, model[off:off+int64(n)]) {
			t.Fatalf("ReadAt(%d, %d): content mismatch", off, n)
		}
	}

	write(0, Pattern(0x21, 2*PageSize))                          // two full pages as a baseline
	write(10, Pattern(0x42, 17))                                 // interior partial write
	write(PageSize-5, Pattern(0x33, 10))                         // straddles pages 0/1
	write(2*PageSize-3, Pattern(0x44, PageSize+6))               // tail + full page 2 + head of 3
	write(int64(4*PageSize+PageSize/2), Pattern(0x55, PageSize)) // straddle into a hole

	check(0, 6*PageSize)          // everything
	check(3, 40)                  // interior partial read
	check(PageSize-8, 16)         // straddling read
	check(2*PageSize-1, 2)        // 1 byte each side of a boundary
	check(5*PageSize-1, PageSize) // read ending in the hole's zero region

	// A one-byte write must not disturb its neighbours.
	write(3*PageSize+7, []byte{0xAB})
	check(3*PageSize, PageSize)
}

func testTruncate(t *testing.T, b store.Backend) {
	defer b.Close()
	if err := b.WriteAt(0, Pattern(0x61, 4*PageSize)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := b.Truncate(2 * PageSize); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if b.Pages() != 2 {
		t.Fatalf("Pages() = %d after Truncate(2p), want 2", b.Pages())
	}
	got := make([]byte, 4*PageSize)
	if err := b.ReadAt(0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	want := Pattern(0x61, 4*PageSize)
	clear(want[2*PageSize:])
	if !bytes.Equal(got, want) {
		t.Fatalf("post-truncate content mismatch")
	}
	if err := b.Truncate(0); err != nil {
		t.Fatalf("Truncate(0): %v", err)
	}
	if b.Pages() != 0 {
		t.Fatalf("Pages() = %d after Truncate(0), want 0", b.Pages())
	}
}

func testSyncAndClose(t *testing.T, b store.Backend) {
	if err := b.WriteAt(0, Pattern(1, PageSize)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.ReadAt(0, make([]byte, 1)); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("ReadAt after Close = %v, want ErrClosed", err)
	}
}

// testSparse writes pages far apart, checking sparse segments stay cheap
// (Pages counts materialized pages, not the address range).
func testSparse(t *testing.T, b store.Backend) {
	defer b.Close()
	offs := []int64{0, 1 << 20, 1 << 30, 1<<40 + PageSize}
	for i, off := range offs {
		if err := b.WriteAt(off, Pattern(byte(i+1), PageSize)); err != nil {
			t.Fatalf("WriteAt(%#x): %v", off, err)
		}
	}
	if b.Pages() != len(offs) {
		t.Fatalf("Pages() = %d, want %d", b.Pages(), len(offs))
	}
	for i, off := range offs {
		got := make([]byte, PageSize)
		if err := b.ReadAt(off, got); err != nil {
			t.Fatalf("ReadAt(%#x): %v", off, err)
		}
		if !bytes.Equal(got, Pattern(byte(i+1), PageSize)) {
			t.Fatalf("content mismatch at %#x", off)
		}
	}
}

// testEngine runs the boundary table through an Engine wrapped around
// the backend, so the async path proves coherence (pending writeback
// must be visible to reads) on every backend.
func testEngine(t *testing.T, b store.Backend) {
	e := store.NewEngine(b, store.Options{})
	defer e.Close()
	model := make([]byte, 6*PageSize)
	write := func(off int64, data []byte) {
		t.Helper()
		if err := e.Write(off, data); err != nil {
			t.Fatalf("Write(%d): %v", off, err)
		}
		copy(model[off:], data)
	}
	check := func(off int64, n int) {
		t.Helper()
		got := make([]byte, n)
		if err := e.Read(off, got); err != nil {
			t.Fatalf("Read(%d, %d): %v", off, n, err)
		}
		if !bytes.Equal(got, model[off:off+int64(n)]) {
			t.Fatalf("Read(%d, %d): content mismatch", off, n)
		}
	}
	write(0, Pattern(0x21, 2*PageSize))
	check(0, 2*PageSize) // read races writeback: queue must serve it
	write(10, Pattern(0x42, 17))
	write(PageSize-5, Pattern(0x33, 10))
	write(2*PageSize-3, Pattern(0x44, PageSize+6))
	check(0, 4*PageSize)
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	check(0, 4*PageSize) // and the backend must hold it after drain
	if got := b.Pages(); got != 4 {
		t.Fatalf("backend Pages() = %d after Flush, want 4", got)
	}
}
