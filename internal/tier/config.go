package tier

import (
	"fmt"
	"os"
	"path/filepath"

	"chorusvm/internal/store"
)

// The "tiered" and "remote" store kinds, registered into the shared
// store.Config registry so every tool's -store flag (and the script
// language's store statement) can select them. internal/core imports
// this package for stats mirroring, so the kinds are available wherever
// the VM is.

func init() {
	store.RegisterKind("tiered", store.KindSpec{
		Validate: validateTiered,
		New:      newTiered,
	})
	store.RegisterKind("remote", store.KindSpec{
		Validate: validateRemote,
		New:      newRemote,
		// The remote kind consumes FaultProb itself, injecting on the
		// wire path server-side, so retries genuinely cross the wire.
		WrapsFaults: true,
	})
}

func validateTiered(c store.Config) error {
	if c.TierHot < 0 || c.TierWarm < 0 {
		return fmt.Errorf("store: negative tier watermark (hot %d, warm %d)", c.TierHot, c.TierWarm)
	}
	return nil
}

func validateRemote(c store.Config) error {
	if err := validateTiered(c); err != nil {
		return err
	}
	switch c.Addr {
	case "", "pipe", "tcp":
		return nil
	default:
		return fmt.Errorf("store: unknown remote transport %q (want pipe or tcp)", c.Addr)
	}
}

// buildTiered makes the tiered composition a Config describes: volatile
// by default, journaled cold tier when a directory is given.
func buildTiered(c store.Config, name string, pageSize int) (*Backend, error) {
	opt := Options{HotPages: c.TierHot, WarmPages: c.TierWarm}
	if c.Dir == "" {
		return NewDefault(pageSize, opt), nil
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return nil, err
	}
	return NewPersistent(filepath.Join(c.Dir, name), pageSize, opt)
}

func newTiered(c store.Config, name string, pageSize int) (store.Backend, error) {
	return buildTiered(c, name, pageSize)
}

// newRemote serves a tiered composition behind the wire: the full
// distributed-swap stack. FaultProb wraps the server-side backend, so
// injected failures travel back as wire-status transients.
func newRemote(c store.Config, name string, pageSize int) (store.Backend, error) {
	inner, err := buildTiered(c, name, pageSize)
	if err != nil {
		return nil, err
	}
	var served store.Backend = inner
	if c.FaultProb > 0 {
		served = store.NewFaulty(inner, store.FaultConfig{Seed: c.FaultSeed(name), Prob: c.FaultProb})
	}
	if c.Addr == "tcp" {
		return LoopbackTCP(served, ClientOptions{})
	}
	return Loopback(served, ClientOptions{})
}
