package tier

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"chorusvm/internal/store"
)

// Journaled is a crash-consistent page store: a redo log (intent log)
// in front of a store.File. Every mutation appends a checksummed record
// to <path>.jrn before touching the page file, so a crash between the
// journal append and the data write loses nothing — reopening replays
// every complete record. A torn record at the journal's tail (the crash
// landed mid-append) is detected by its checksum and discarded: the
// mutation never happened, the prior state is intact. Sync checkpoints:
// after the page file is durable the journal truncates back to its
// header, keeping replay cost proportional to the un-synced window.
//
// Record format, little-endian, after the "CVMJRN1\n" header:
//
//	[u8 op][u64 off][u32 n][u32 crc][n bytes payload]
//
// op 1 = write (off, payload), 2 = truncate (off = size), 3 = discard
// (off = page offset). The crc covers op, off, n and the payload, so a
// torn or bit-flipped record cannot replay.
type Journaled struct {
	mu     sync.Mutex
	inner  *store.File
	jrn    *os.File
	path   string
	ps     int64
	crash  Crashpoint
	downed bool // simulated crash happened: everything fails until reopen
	closed bool
}

const jrnMagic = "CVMJRN1\n"

// Journal ops.
const (
	jopWrite    = 1
	jopTruncate = 2
	jopDiscard  = 3
)

// Crashpoint selects where a simulated crash fires, for crash-replay
// tests. After the crash fires the store is dead — every operation
// fails, Close abandons without checkpointing — exactly as if the
// machine lost power there.
type Crashpoint int

const (
	// CrashNone runs normally.
	CrashNone Crashpoint = iota
	// CrashAfterAppend dies after the journal record is fully written
	// but before the data file sees the mutation: replay must recover
	// the mutation.
	CrashAfterAppend
	// CrashMidAppend dies halfway through writing the journal record:
	// replay must discard the torn record and keep the prior state.
	CrashMidAppend
)

var (
	_ store.Backend    = (*Journaled)(nil)
	_ store.Discarder  = (*Journaled)(nil)
	_ store.PageLister = (*Journaled)(nil)
)

// errCrashed is what operations return once the simulated crash fired.
var errCrashed = fmt.Errorf("tier: simulated crash")

// OpenJournaled opens (or creates) the journaled page store rooted at
// path: path+".pages"/".idx" via store.File, path+".jrn" the redo log.
// An existing journal replays onto the page file before the store
// serves I/O.
func OpenJournaled(path string, pageSize int) (*Journaled, error) {
	inner, err := store.NewFile(path, pageSize)
	if err != nil {
		return nil, err
	}
	jrn, err := os.OpenFile(path+".jrn", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		inner.Close()
		return nil, err
	}
	j := &Journaled{inner: inner, jrn: jrn, path: path, ps: int64(pageSize)}
	if err := j.replay(); err != nil {
		jrn.Close()
		inner.Close()
		return nil, err
	}
	return j, nil
}

// replay applies every complete, checksum-valid record to the page
// file, stops at the first torn one, then checkpoints.
func (j *Journaled) replay() error {
	raw, err := io.ReadAll(j.jrn)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		// Fresh journal: write the header.
		if _, err := j.jrn.Write([]byte(jrnMagic)); err != nil {
			return err
		}
		return nil
	}
	if len(raw) < len(jrnMagic) || string(raw[:len(jrnMagic)]) != jrnMagic {
		return fmt.Errorf("tier: %s.jrn: bad magic", j.path)
	}
	p := raw[len(jrnMagic):]
	replayed := 0
	for len(p) > 0 {
		op, off, payload, rest, ok := decodeRecord(p)
		if !ok {
			break // torn tail: the crash landed mid-append
		}
		p = rest
		switch op {
		case jopWrite:
			if err := j.inner.WriteAt(off, payload); err != nil {
				return err
			}
		case jopTruncate:
			if err := j.inner.Truncate(off); err != nil {
				return err
			}
		case jopDiscard:
			if err := j.inner.DiscardPage(off); err != nil {
				return err
			}
		default:
			return fmt.Errorf("tier: %s.jrn: unknown op %d", j.path, op)
		}
		replayed++
	}
	if replayed > 0 || len(p) > 0 {
		// Make the replayed state durable, then drop the journal back
		// to its header (also discarding any torn tail).
		if err := j.inner.Sync(); err != nil {
			return err
		}
		return j.checkpointLocked()
	}
	return nil
}

// encodeRecord builds one journal record.
func encodeRecord(op byte, off int64, payload []byte) []byte {
	rec := make([]byte, 0, 17+len(payload))
	rec = append(rec, op)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(off))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	crc := crc32.ChecksumIEEE(rec)
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	rec = binary.LittleEndian.AppendUint32(rec, crc)
	rec = append(rec, payload...)
	return rec
}

// decodeRecord parses one record off the front of p; ok is false for a
// short or checksum-invalid (torn) record.
func decodeRecord(p []byte) (op byte, off int64, payload, rest []byte, ok bool) {
	if len(p) < 17 {
		return 0, 0, nil, nil, false
	}
	op = p[0]
	off = int64(binary.LittleEndian.Uint64(p[1:9]))
	n := int(binary.LittleEndian.Uint32(p[9:13]))
	crc := binary.LittleEndian.Uint32(p[13:17])
	if len(p) < 17+n {
		return 0, 0, nil, nil, false
	}
	payload = p[17 : 17+n]
	want := crc32.ChecksumIEEE(p[:13])
	want = crc32.Update(want, crc32.IEEETable, payload)
	if crc != want {
		return 0, 0, nil, nil, false
	}
	return op, off, payload, p[17+n:], true
}

// append journals one record, firing the configured crashpoint; j.mu
// held. A fired crashpoint leaves the store downed.
func (j *Journaled) append(op byte, off int64, payload []byte) error {
	rec := encodeRecord(op, off, payload)
	if j.crash == CrashMidAppend {
		j.downed = true
		j.jrn.Write(rec[:len(rec)/2])
		return errCrashed
	}
	if _, err := j.jrn.Write(rec); err != nil {
		return err
	}
	if j.crash == CrashAfterAppend {
		j.downed = true
		return errCrashed
	}
	return nil
}

// checkpointLocked truncates the journal back to its header; j.mu (or
// open-time exclusivity) held. Callers ensure the page file is durable
// first.
func (j *Journaled) checkpointLocked() error {
	if err := j.jrn.Truncate(int64(len(jrnMagic))); err != nil {
		return err
	}
	if _, err := j.jrn.Seek(int64(len(jrnMagic)), io.SeekStart); err != nil {
		return err
	}
	return j.jrn.Sync()
}

// guard reports the blanket failure states; j.mu held.
func (j *Journaled) guard() error {
	if j.closed {
		return store.ErrClosed
	}
	if j.downed {
		return errCrashed
	}
	return nil
}

// SetCrashpoint arms (or disarms, CrashNone) the simulated crash.
func (j *Journaled) SetCrashpoint(cp Crashpoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crash = cp
}

// PageSize implements store.Backend.
func (j *Journaled) PageSize() int { return int(j.ps) }

// ReadAt implements store.Backend. Reads need no journaling: mutations
// apply through to the page file at write time, so it is always
// current.
func (j *Journaled) ReadAt(off int64, buf []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.guard(); err != nil {
		return err
	}
	return j.inner.ReadAt(off, buf)
}

// WriteAt implements store.Backend: journal the intent, then apply.
func (j *Journaled) WriteAt(off int64, data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.guard(); err != nil {
		return err
	}
	if err := j.append(jopWrite, off, data); err != nil {
		return err
	}
	return j.inner.WriteAt(off, data)
}

// Truncate implements store.Backend.
func (j *Journaled) Truncate(size int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.guard(); err != nil {
		return err
	}
	if err := j.append(jopTruncate, size, nil); err != nil {
		return err
	}
	return j.inner.Truncate(size)
}

// DiscardPage implements store.Discarder.
func (j *Journaled) DiscardPage(off int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.guard(); err != nil {
		return err
	}
	if err := j.append(jopDiscard, off, nil); err != nil {
		return err
	}
	return j.inner.DiscardPage(off)
}

// Sync implements store.Backend: make the page file durable, then
// checkpoint the journal.
func (j *Journaled) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.guard(); err != nil {
		return err
	}
	if err := j.inner.Sync(); err != nil {
		return err
	}
	return j.checkpointLocked()
}

// PageOffsets implements store.PageLister.
func (j *Journaled) PageOffsets() []int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.downed {
		return nil
	}
	return j.inner.PageOffsets()
}

// Pages implements store.Backend.
func (j *Journaled) Pages() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.downed {
		return 0
	}
	return j.inner.Pages()
}

// Close implements store.Backend. A downed (crashed) store must not
// checkpoint: the journal is the recovery story, and truncating it
// would destroy the very records replay needs. Closing the page file
// itself is safe — replay is idempotent redo, so the page file holding
// any prefix of the applied state recovers to the same place.
func (j *Journaled) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.downed {
		j.jrn.Close()
		j.inner.Close()
		return nil
	}
	var firstErr error
	if err := j.inner.Sync(); err != nil {
		firstErr = err
	}
	if err := j.checkpointLocked(); firstErr == nil && err != nil {
		firstErr = err
	}
	if err := j.jrn.Close(); firstErr == nil && err != nil {
		firstErr = err
	}
	if err := j.inner.Close(); firstErr == nil && err != nil {
		firstErr = err
	}
	return firstErr
}
