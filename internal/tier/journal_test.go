package tier_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"chorusvm/internal/store"
	"chorusvm/internal/store/storetest"
	"chorusvm/internal/tier"
)

// TestJournaledConformance runs the journaled store through the shared
// battery and the reopen check on its own, independent of the tier
// composition.
func TestJournaledConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T, ps int) store.Backend {
		j, err := tier.OpenJournaled(filepath.Join(t.TempDir(), "jrn"), ps)
		if err != nil {
			t.Fatalf("OpenJournaled: %v", err)
		}
		return j
	})
}

func TestJournaledReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jrn")
	storetest.RunReopen(t, func(t *testing.T) store.Backend {
		j, err := tier.OpenJournaled(path, storetest.PageSize)
		if err != nil {
			t.Fatalf("OpenJournaled: %v", err)
		}
		return j
	})
}

// TestCrashAfterAppend kills the store between the journal append and
// the data write: the mutation must be recovered, page-exact, by
// replay on reopen.
func TestCrashAfterAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jrn")
	j, err := tier.OpenJournaled(path, ps)
	if err != nil {
		t.Fatalf("OpenJournaled: %v", err)
	}
	// Survivors written and made durable before the crash window.
	for i := int64(0); i < 3; i++ {
		if err := j.WriteAt(i*ps, storetest.Pattern(byte(i+1), ps)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// The doomed write: journaled, never applied.
	j.SetCrashpoint(tier.CrashAfterAppend)
	doomed := storetest.Pattern(0xD0, ps)
	if err := j.WriteAt(7*ps, doomed); err == nil {
		t.Fatalf("WriteAt across the crashpoint succeeded, want simulated crash")
	}
	// The store is down: everything fails until reopen.
	if err := j.WriteAt(0, doomed); err == nil {
		t.Fatalf("WriteAt on a downed store succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j, err = tier.OpenJournaled(path, ps)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	// Replay recovered the journaled-but-unapplied write, page-exact.
	got := make([]byte, ps)
	if err := j.ReadAt(7*ps, got); err != nil {
		t.Fatalf("ReadAt recovered page: %v", err)
	}
	if !bytes.Equal(got, doomed) {
		t.Fatalf("recovered page differs from the journaled write")
	}
	// And the survivors are intact.
	for i := int64(0); i < 3; i++ {
		if err := j.ReadAt(i*ps, got); err != nil {
			t.Fatalf("ReadAt survivor %d: %v", i, err)
		}
		if !bytes.Equal(got, storetest.Pattern(byte(i+1), ps)) {
			t.Fatalf("survivor page %d corrupted", i)
		}
	}
	if j.Pages() != 4 {
		t.Fatalf("Pages() = %d after recovery, want 4", j.Pages())
	}
}

// TestCrashMidAppend kills the store halfway through the journal
// append: the torn record must be discarded on reopen — the mutation
// never happened — and the prior state must be intact.
func TestCrashMidAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jrn")
	j, err := tier.OpenJournaled(path, ps)
	if err != nil {
		t.Fatalf("OpenJournaled: %v", err)
	}
	before := storetest.Pattern(0xAA, ps)
	if err := j.WriteAt(0, before); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	j.SetCrashpoint(tier.CrashMidAppend)
	if err := j.WriteAt(0, storetest.Pattern(0xBB, ps)); err == nil {
		t.Fatalf("WriteAt across the crashpoint succeeded, want simulated crash")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j, err = tier.OpenJournaled(path, ps)
	if err != nil {
		t.Fatalf("reopen with torn journal tail: %v", err)
	}
	defer j.Close()
	got := make([]byte, ps)
	if err := j.ReadAt(0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, before) {
		t.Fatalf("torn record leaked into the page file")
	}
	// The reopen checkpointed the torn tail away: a second reopen must
	// see a clean journal.
	if err := j.WriteAt(ps, storetest.Pattern(0xCC, ps)); err != nil {
		t.Fatalf("WriteAt after recovery: %v", err)
	}
}

// TestJournalCheckpoint checks Sync bounds the journal: after a
// checkpoint the journal is back to its header, not accumulating every
// write forever.
func TestJournalCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jrn")
	j, err := tier.OpenJournaled(path, ps)
	if err != nil {
		t.Fatalf("OpenJournaled: %v", err)
	}
	defer j.Close()
	for i := int64(0); i < 8; i++ {
		if err := j.WriteAt(i*ps, storetest.Pattern(byte(i+1), ps)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	}
	grown, err := os.Stat(path + ".jrn")
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if grown.Size() <= 8 {
		t.Fatalf("journal did not grow under writes (size %d)", grown.Size())
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	trimmed, err := os.Stat(path + ".jrn")
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if trimmed.Size() != 8 { // the "CVMJRN1\n" header
		t.Fatalf("journal size %d after checkpoint, want 8", trimmed.Size())
	}
}
