package tier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"chorusvm/internal/store"
)

// The remote tier: a store.Backend served over a byte stream, so DSM
// sites (or anything else) can page against one shared store. The
// protocol is a simple asynchronous request/response exchange — every
// request carries an id, responses can arrive out of order, and the
// client muxes them back to waiters — so slow operations do not
// head-of-line-block fast ones. Error classes survive the wire: a
// transient injected server-side (store.Faulty on the wire path) comes
// back as a transient, so the caller's retry policy works unchanged
// across the network.
//
// Request frame, little-endian:
//
//	[u64 id][u8 op][u64 off][u32 n][n bytes payload (writes only)]
//
// Response frame:
//
//	[u64 id][u8 status][u32 n][n bytes payload]
//
// Read responses carry the page bytes; error responses carry the
// message; Pages/PageSize responses carry a u64.

// Wire ops.
const (
	opRead = iota + 1
	opWrite
	opTruncate
	opSync
	opPages
	opPageSize
	opDiscard
)

// Wire status codes: the error classes that must survive the wire.
const (
	stOK = iota
	stTransient
	stCorrupt
	stClosed
	stErr
)

// Server serves a store.Backend to remote clients. It owns nothing but
// the connections handed to it: Close tears those down and waits for
// every in-flight handler, but the backend belongs to the caller.
type Server struct {
	b  store.Backend
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	ln     net.Listener
	closed bool
}

// NewServer wraps b for serving. Callers then hand it connections
// (ServeConn) or a listener (Serve).
func NewServer(b store.Backend) *Server {
	return &Server{b: b, conns: make(map[net.Conn]struct{})}
}

// ServeConn serves one connection in the background until the peer
// hangs up or the server closes.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.readLoop(conn)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
}

// Serve accepts connections from ln until it closes. It runs in the
// background; Close closes the listener.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.ServeConn(conn)
		}
	}()
}

// readLoop decodes requests and dispatches each to its own handler
// goroutine; responses serialize through a per-connection write lock.
func (s *Server) readLoop(conn net.Conn) {
	var wmu sync.Mutex
	hdr := make([]byte, 21)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:8])
		op := hdr[8]
		off := int64(binary.LittleEndian.Uint64(hdr[9:17]))
		n := binary.LittleEndian.Uint32(hdr[17:21])
		var payload []byte
		if op == opWrite {
			payload = make([]byte, n)
			if _, err := io.ReadFull(conn, payload); err != nil {
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			status, out := s.handle(op, off, n, payload)
			resp := make([]byte, 0, 13+len(out))
			resp = binary.LittleEndian.AppendUint64(resp, id)
			resp = append(resp, status)
			resp = binary.LittleEndian.AppendUint32(resp, uint32(len(out)))
			resp = append(resp, out...)
			wmu.Lock()
			conn.Write(resp)
			wmu.Unlock()
		}()
	}
}

// handle executes one request against the backend.
func (s *Server) handle(op byte, off int64, n uint32, payload []byte) (byte, []byte) {
	switch op {
	case opRead:
		buf := make([]byte, n)
		if err := s.b.ReadAt(off, buf); err != nil {
			return encodeErr(err)
		}
		return stOK, buf
	case opWrite:
		if err := s.b.WriteAt(off, payload); err != nil {
			return encodeErr(err)
		}
		return stOK, nil
	case opTruncate:
		if err := s.b.Truncate(off); err != nil {
			return encodeErr(err)
		}
		return stOK, nil
	case opSync:
		if err := s.b.Sync(); err != nil {
			return encodeErr(err)
		}
		return stOK, nil
	case opPages:
		return stOK, binary.LittleEndian.AppendUint64(nil, uint64(s.b.Pages()))
	case opPageSize:
		return stOK, binary.LittleEndian.AppendUint64(nil, uint64(s.b.PageSize()))
	case opDiscard:
		d, ok := s.b.(store.Discarder)
		if !ok {
			return stErr, []byte("backend cannot discard pages")
		}
		if err := d.DiscardPage(off); err != nil {
			return encodeErr(err)
		}
		return stOK, nil
	default:
		return stErr, fmt.Appendf(nil, "unknown op %d", op)
	}
}

// encodeErr maps an error to its wire status, preserving the class.
func encodeErr(err error) (byte, []byte) {
	switch {
	case errors.Is(err, store.ErrTransient):
		return stTransient, []byte(err.Error())
	case errors.Is(err, store.ErrCorrupt):
		return stCorrupt, []byte(err.Error())
	case errors.Is(err, store.ErrClosed):
		return stClosed, []byte(err.Error())
	default:
		return stErr, []byte(err.Error())
	}
}

// Close closes the listener and every connection, then waits for all
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// ClientOptions parameterizes a remote client.
type ClientOptions struct {
	// Timeout bounds each operation's wait for its response; an expiry
	// surfaces as a transient error (the response may still be in
	// flight — retrying is correct). 0 means 2s.
	Timeout time.Duration
}

// Client is a store.Backend over a connection to a Server. Operations
// are issued asynchronously and muxed by id, so concurrent callers
// share the connection without head-of-line blocking. A timed-out or
// server-injected transient failure counts toward the global
// RemoteRetries counter (the caller's retry policy will re-issue it); a
// broken connection is permanent and fails all waiters.
type Client struct {
	conn    net.Conn
	ps      int
	timeout time.Duration

	wmu sync.Mutex // frame writes

	mu      sync.Mutex
	pending map[uint64]chan wireResp
	nextID  uint64
	broken  error // permanent transport failure, set by the reader
	closed  bool

	readerDone chan struct{}
	// teardown runs after the connection closes: Loopback hands the
	// client ownership of the server and inner backend.
	teardown func()
}

type wireResp struct {
	status  byte
	payload []byte
}

var _ store.Backend = (*Client)(nil)

// NewClient attaches to a served connection and learns the remote page
// size with a first round trip.
func NewClient(conn net.Conn, opt ClientOptions) (*Client, error) {
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Second
	}
	c := &Client{
		conn:       conn,
		timeout:    opt.Timeout,
		pending:    make(map[uint64]chan wireResp),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	resp, err := c.call(opPageSize, 0, 0, nil)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("tier: remote handshake: %w", err)
	}
	if len(resp) != 8 {
		c.Close()
		return nil, fmt.Errorf("tier: remote handshake: short page-size response")
	}
	c.ps = int(binary.LittleEndian.Uint64(resp))
	if c.ps <= 0 {
		c.Close()
		return nil, fmt.Errorf("tier: remote handshake: page size %d", c.ps)
	}
	return c, nil
}

// readLoop muxes responses to waiters; on transport failure it fails
// every pending and future call permanently.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	hdr := make([]byte, 13)
	for {
		if _, err := io.ReadFull(c.conn, hdr); err != nil {
			c.mu.Lock()
			if c.broken == nil {
				c.broken = fmt.Errorf("tier: remote connection lost: %v", err)
			}
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:8])
		status := hdr[8]
		n := binary.LittleEndian.Uint32(hdr[9:13])
		var payload []byte
		if n > 0 {
			payload = make([]byte, n)
			if _, err := io.ReadFull(c.conn, payload); err != nil {
				continue // header loop will hit the same error
			}
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- wireResp{status, payload}
		}
		// An abandoned id (the waiter timed out) is dropped here.
	}
}

// call issues one request and waits for its response or the timeout.
func (c *Client) call(op byte, off int64, n uint32, payload []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, store.ErrClosed
	}
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan wireResp, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req := make([]byte, 0, 21+len(payload))
	req = binary.LittleEndian.AppendUint64(req, id)
	req = append(req, op)
	req = binary.LittleEndian.AppendUint64(req, uint64(off))
	req = binary.LittleEndian.AppendUint32(req, n)
	req = append(req, payload...)
	c.wmu.Lock()
	_, werr := c.conn.Write(req)
	c.wmu.Unlock()
	if werr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		gRemoteRetries.Add(1)
		return nil, fmt.Errorf("tier: remote send failed (%v): %w", werr, store.ErrTransient)
	}

	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.broken
			c.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("tier: remote connection lost")
			}
			return nil, err
		}
		return decodeResp(resp)
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		gRemoteRetries.Add(1)
		return nil, fmt.Errorf("tier: remote op %d timed out after %v: %w", op, c.timeout, store.ErrTransient)
	}
}

// decodeResp maps a wire status back to the matching error class.
func decodeResp(r wireResp) ([]byte, error) {
	switch r.status {
	case stOK:
		return r.payload, nil
	case stTransient:
		gRemoteRetries.Add(1)
		return nil, fmt.Errorf("tier: remote: %s: %w", r.payload, store.ErrTransient)
	case stCorrupt:
		return nil, fmt.Errorf("tier: remote: %s: %w", r.payload, store.ErrCorrupt)
	case stClosed:
		return nil, fmt.Errorf("tier: remote: %s: %w", r.payload, store.ErrClosed)
	default:
		return nil, fmt.Errorf("tier: remote: %s", r.payload)
	}
}

// PageSize implements store.Backend (learned at handshake).
func (c *Client) PageSize() int { return c.ps }

// ReadAt implements store.Backend.
func (c *Client) ReadAt(off int64, buf []byte) error {
	resp, err := c.call(opRead, off, uint32(len(buf)), nil)
	if err != nil {
		return err
	}
	if len(resp) != len(buf) {
		return fmt.Errorf("tier: remote read returned %d bytes, want %d", len(resp), len(buf))
	}
	copy(buf, resp)
	return nil
}

// WriteAt implements store.Backend.
func (c *Client) WriteAt(off int64, data []byte) error {
	_, err := c.call(opWrite, off, uint32(len(data)), data)
	return err
}

// Truncate implements store.Backend.
func (c *Client) Truncate(size int64) error {
	_, err := c.call(opTruncate, size, 0, nil)
	return err
}

// Sync implements store.Backend.
func (c *Client) Sync() error {
	_, err := c.call(opSync, 0, 0, nil)
	return err
}

// Pages implements store.Backend (0 when the wire is down — the count
// is advisory).
func (c *Client) Pages() int {
	resp, err := c.call(opPages, 0, 0, nil)
	if err != nil || len(resp) != 8 {
		return 0
	}
	return int(binary.LittleEndian.Uint64(resp))
}

// DiscardPage implements store.Discarder.
func (c *Client) DiscardPage(off int64) error {
	_, err := c.call(opDiscard, off, 0, nil)
	return err
}

// Close implements store.Backend: close the connection, wait out the
// reader, run the teardown (for Loopback: server and inner backend).
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	<-c.readerDone
	if c.teardown != nil {
		c.teardown()
	}
	return nil
}

// Loopback serves b over an in-process pipe and returns the client.
// The client owns everything: its Close tears down the server and b.
func Loopback(b store.Backend, opt ClientOptions) (*Client, error) {
	srv := NewServer(b)
	cliEnd, srvEnd := net.Pipe()
	srv.ServeConn(srvEnd)
	c, err := NewClient(cliEnd, opt)
	if err != nil {
		srv.Close()
		b.Close()
		return nil, err
	}
	c.teardown = func() {
		srv.Close()
		b.Close()
	}
	return c, nil
}

// LoopbackTCP serves b on a loopback TCP listener and returns a client
// dialed over real sockets. Ownership matches Loopback.
func LoopbackTCP(b store.Backend, opt ClientOptions) (*Client, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := NewServer(b)
	srv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		srv.Close()
		b.Close()
		return nil, err
	}
	c, err := NewClient(conn, opt)
	if err != nil {
		srv.Close()
		b.Close()
		return nil, err
	}
	c.teardown = func() {
		srv.Close()
		b.Close()
	}
	return c, nil
}
