package tier_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"chorusvm/internal/leakcheck"
	"chorusvm/internal/store"
	"chorusvm/internal/store/storetest"
	"chorusvm/internal/tier"
)

// TestRemoteConformance runs the shared battery over the remote client:
// fronting a plain backend over a pipe, fronting the full tiered
// composition, and over real TCP sockets.
func TestRemoteConformance(t *testing.T) {
	cases := []struct {
		name string
		mk   storetest.Maker
	}{
		{"remote(mem)", func(t *testing.T, ps int) store.Backend {
			c, err := tier.Loopback(store.NewMem(ps), tier.ClientOptions{})
			if err != nil {
				t.Fatalf("Loopback: %v", err)
			}
			return c
		}},
		{"remote(tiered)", func(t *testing.T, ps int) store.Backend {
			c, err := tier.Loopback(tier.NewDefault(ps, tier.Options{HotPages: 2, WarmPages: 2}), tier.ClientOptions{})
			if err != nil {
				t.Fatalf("Loopback: %v", err)
			}
			return c
		}},
		{"remote(tcp)", func(t *testing.T, ps int) store.Backend {
			c, err := tier.LoopbackTCP(store.NewMem(ps), tier.ClientOptions{})
			if err != nil {
				t.Fatalf("LoopbackTCP: %v", err)
			}
			return c
		}},
	}
	for _, bc := range cases {
		t.Run(bc.name, func(t *testing.T) {
			leakcheck.Check(t)
			storetest.Run(t, bc.mk)
		})
	}
}

// TestRemoteErrorClasses checks error classes survive the wire: a
// transient injected server-side must come back matching
// store.ErrTransient, so retry policies work across the network.
func TestRemoteErrorClasses(t *testing.T) {
	leakcheck.Check(t)
	inner := store.NewFaulty(store.NewMem(ps), store.FaultConfig{Seed: 3, Prob: 1, MaxConsecutive: 2})
	c, err := tier.Loopback(inner, tier.ClientOptions{})
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	defer c.Close()

	var transients int
	buf := make([]byte, ps)
	for i := 0; i < 8; i++ {
		err := c.ReadAt(0, buf)
		if err == nil {
			continue
		}
		if !errors.Is(err, store.ErrTransient) {
			t.Fatalf("injected fault came back as %v, want ErrTransient", err)
		}
		transients++
	}
	if transients == 0 {
		t.Fatalf("Prob-1 injector never surfaced a transient through the wire")
	}
	// MaxConsecutive guarantees forward progress: a retry loop longer
	// than the cap must succeed.
	got := false
	for i := 0; i < 4; i++ {
		if c.ReadAt(0, buf) == nil {
			got = true
			break
		}
	}
	if !got {
		t.Fatalf("retries never got through the MaxConsecutive window")
	}
}

// TestRemoteTimeout checks the per-op timeout surfaces as a transient:
// a hung server must not hang the caller.
func TestRemoteTimeout(t *testing.T) {
	leakcheck.Check(t)
	// A server-side latency spike far beyond the client timeout.
	inner := store.NewFaulty(store.NewMem(ps), store.FaultConfig{
		Seed: 1, Latency: 200 * time.Millisecond, LatencyProb: 1,
	})
	c, err := tier.Loopback(inner, tier.ClientOptions{Timeout: 20 * time.Millisecond})
	if err != nil {
		// The handshake itself can time out under the spike; that is
		// the same behaviour, reported earlier.
		if !errors.Is(err, store.ErrTransient) {
			t.Fatalf("handshake failure %v, want ErrTransient", err)
		}
		return
	}
	defer c.Close()
	start := time.Now()
	rerr := c.ReadAt(0, make([]byte, ps))
	if rerr == nil {
		t.Fatalf("ReadAt under a 200ms spike beat a 20ms timeout")
	}
	if !errors.Is(rerr, store.ErrTransient) {
		t.Fatalf("timeout came back as %v, want ErrTransient", rerr)
	}
	if took := time.Since(start); took > 150*time.Millisecond {
		t.Fatalf("timed-out op took %v, timeout is not bounding the wait", took)
	}
}

// TestRemoteConcurrent hammers one client from many goroutines: the
// id-muxed protocol must keep every response with its caller.
func TestRemoteConcurrent(t *testing.T) {
	leakcheck.Check(t)
	c, err := tier.Loopback(store.NewMem(ps), tier.ClientOptions{})
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	defer c.Close()
	const workers = 8
	const rounds = 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			want := storetest.Pattern(byte(w+1), ps)
			off := int64(w) * ps
			got := make([]byte, ps)
			for r := 0; r < rounds; r++ {
				if err := c.WriteAt(off, want); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				if err := c.ReadAt(off, got); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("worker %d got another worker's page", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Pages(); got != workers {
		t.Fatalf("Pages() = %d, want %d", got, workers)
	}
}

// TestRemoteBrokenConnection checks a lost transport fails pending and
// future calls permanently (not transiently: there is no server to
// retry against) without leaking the waiters.
func TestRemoteBrokenConnection(t *testing.T) {
	leakcheck.Check(t)
	inner := store.NewMem(ps)
	srv := tier.NewServer(inner)
	c, err := tier.Loopback(store.NewMem(ps), tier.ClientOptions{})
	if err != nil {
		t.Fatalf("Loopback: %v", err)
	}
	srv.Close() // unrelated server: just exercising double-close safety
	if err := c.WriteAt(0, storetest.Pattern(1, ps)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	// Kill the transport out from under the client by closing it, then
	// verify permanence of the failure mode.
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	err = c.ReadAt(0, make([]byte, ps))
	if !errors.Is(err, store.ErrClosed) {
		t.Fatalf("ReadAt after Close = %v, want ErrClosed", err)
	}
	inner.Close()
}
