// Package tier implements a tiered backing store: one store.Backend
// composed of three — hot pages in RAM, warm pages compressed, cold
// pages in a (optionally journaled, crash-consistent) page file — with
// policy-driven migration between them. The store runs as an exclusive
// (victim) cache under the VM: the replacement policy feeds usage
// signals down through store.Adviser — a page the VM evicts has just
// left main memory, making it the likeliest page to refault next, so
// the eviction notice victim-inserts it into the warm tier; a page
// unreferenced across a whole harvest tick sinks a tier. Refaults climb
// one tier per read (cold to warm, warm to hot), a frequency ratchet
// that keeps one-hit wonders out of the hot tier, while writes (usually
// eviction push-outs) stage into the warm tier without displacing
// proven-hot pages. Capacity watermarks bound the hot and warm tiers,
// an async migrator drains advice in the background, and the Remote
// client/server pair (remote.go) puts the whole composition behind a
// wire so DSM sites can share one store.
package tier

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chorusvm/internal/store"
)

// Tier indices: hot is fastest and smallest, cold largest and slowest.
const (
	Hot  = 0
	Warm = 1
	Cold = 2
)

// Options parameterizes a tiered backend. The zero value means the
// defaults: 64 hot pages, 256 warm pages, policy-driven migration.
type Options struct {
	// HotPages and WarmPages are capacity watermarks in pages; the cold
	// tier is unbounded. 0 means the default (64 hot, 256 warm).
	HotPages  int
	WarmPages int
	// Static disables migration entirely: pages place by offset (the
	// first HotPages page indices hot, the next WarmPages warm, the rest
	// cold) and never move. The ablation baseline.
	Static bool
	// FlushColdOnClose demotes every resident page to the cold tier
	// before closing, so a persistent cold tier holds everything across
	// a reopen. Set by NewPersistent.
	FlushColdOnClose bool
}

func (o *Options) defaults() {
	if o.HotPages == 0 {
		o.HotPages = 64
	}
	if o.WarmPages == 0 {
		o.WarmPages = 256
	}
}

// Backend is the tiered composition; it implements store.Backend plus
// the Discarder/PageLister/Adviser extensions.
type Backend struct {
	ps  int64
	opt Options

	mu     sync.Mutex
	tiers  [3]store.Backend
	level  map[int64]int8 // page offset -> tier holding it
	lrus   [2]*lruList    // recency per bounded tier (hot, warm)
	closed bool

	// Advice arrives under its own lock and only ever enqueues: callers
	// hold VM locks and must never wait behind tier I/O (which runs
	// under b.mu).
	adviceMu    sync.Mutex
	sink        map[int64]store.Advice // pending advice per page
	advisedCold uint64
	advisedIdle uint64

	migMu   sync.Mutex
	migStop chan struct{}
	migDone chan struct{}

	// Monotonic counters; b.mu held.
	promotions uint64
	demotions  uint64
	hotReads   uint64
	warmReads  uint64
	coldReads  uint64
}

var (
	_ store.Backend    = (*Backend)(nil)
	_ store.Discarder  = (*Backend)(nil)
	_ store.PageLister = (*Backend)(nil)
	_ store.Adviser    = (*Backend)(nil)
)

// New composes three backends into a tiered store. All three must share
// a page size and support single-page discard (migration moves pages
// out of a tier one at a time). Pages already present in a tier — a
// reopened persistent cold tier — are adopted into the level map.
func New(hot, warm, cold store.Backend, opt Options) (*Backend, error) {
	opt.defaults()
	if opt.HotPages < 0 || opt.WarmPages < 0 {
		return nil, fmt.Errorf("tier: negative watermark (hot %d, warm %d)", opt.HotPages, opt.WarmPages)
	}
	tiers := [3]store.Backend{hot, warm, cold}
	ps := hot.PageSize()
	for i, tb := range tiers {
		if tb.PageSize() != ps {
			return nil, fmt.Errorf("tier: tier %d page size %d, want %d", i, tb.PageSize(), ps)
		}
		if _, ok := tb.(store.Discarder); !ok {
			return nil, fmt.Errorf("tier: tier %d backend cannot discard pages", i)
		}
	}
	b := &Backend{
		ps:    int64(ps),
		opt:   opt,
		tiers: tiers,
		level: make(map[int64]int8),
		lrus:  [2]*lruList{newLRUList(), newLRUList()},
		sink:  make(map[int64]store.Advice),
	}
	// Adopt pre-existing pages, coldest first so a hotter duplicate wins.
	for lv := Cold; lv >= Hot; lv-- {
		if pl, ok := tiers[lv].(store.PageLister); ok {
			for _, po := range pl.PageOffsets() {
				b.setLevel(po, int8(lv), true)
			}
		}
	}
	return b, nil
}

// NewDefault builds the canonical volatile composition: RAM hot tier,
// compressed warm tier, RAM cold tier.
func NewDefault(pageSize int, opt Options) *Backend {
	b, err := New(store.NewMem(pageSize), store.NewFlate(pageSize), store.NewMem(pageSize), opt)
	if err != nil {
		panic(err) // the built-ins always satisfy New's requirements
	}
	return b
}

// NewPersistent builds the durable composition: RAM hot, compressed
// warm, and a journaled page file at path as the cold tier. Close
// flushes everything cold first, so a reopen sees every page.
func NewPersistent(path string, pageSize int, opt Options) (*Backend, error) {
	cold, err := OpenJournaled(path, pageSize)
	if err != nil {
		return nil, err
	}
	opt.FlushColdOnClose = true
	b, err := New(store.NewMem(pageSize), store.NewFlate(pageSize), cold, opt)
	if err != nil {
		cold.Close()
		return nil, err
	}
	return b, nil
}

// staticLevel places a page by its index when migration is off.
func (b *Backend) staticLevel(po int64) int8 {
	idx := po / b.ps
	switch {
	case idx < int64(b.opt.HotPages):
		return Hot
	case idx < int64(b.opt.HotPages+b.opt.WarmPages):
		return Warm
	default:
		return Cold
	}
}

// setLevel records the tier holding po, maintaining LRU membership;
// b.mu held. back pushes the page to the cold end of its tier's LRU
// (demotions and adopted pages) instead of the hot end.
func (b *Backend) setLevel(po int64, lv int8, back bool) {
	if old, ok := b.level[po]; ok && old != lv && old < Cold {
		b.lrus[old].remove(po)
	}
	b.level[po] = lv
	if lv < Cold {
		if back {
			b.lrus[lv].toBack(po)
		} else {
			b.lrus[lv].touch(po)
		}
	}
}

// dropLevel forgets po entirely; b.mu held.
func (b *Backend) dropLevel(po int64) {
	if lv, ok := b.level[po]; ok {
		if lv < Cold {
			b.lrus[lv].remove(po)
		}
		delete(b.level, po)
	}
}

// movePage relocates one page's content between tiers; b.mu held.
func (b *Backend) movePage(po int64, src, dst int8) error {
	pg := make([]byte, b.ps)
	if err := b.tiers[src].ReadAt(po, pg); err != nil {
		return err
	}
	if err := b.tiers[dst].WriteAt(po, pg); err != nil {
		return err
	}
	if err := b.tiers[src].(store.Discarder).DiscardPage(po); err != nil {
		return err
	}
	return nil
}

// promote climbs a warm/cold page one tier (content already in pg) and
// rebalances; b.mu held. The single-level climb is a frequency filter:
// one refault earns warm, only a second refault while still warm earns
// hot, so the hot tier never fills with one-hit wonders.
func (b *Backend) promote(po int64, from int8, pg []byte) error {
	to := from - 1
	if err := b.tiers[to].WriteAt(po, pg); err != nil {
		return err
	}
	if err := b.tiers[from].(store.Discarder).DiscardPage(po); err != nil {
		return err
	}
	b.setLevel(po, to, false)
	b.promotions++
	gPromotions.Add(1)
	return b.rebalanceLocked()
}

// rebalanceLocked enforces the capacity watermarks by demoting from the
// cold end of each bounded tier's LRU; b.mu held.
func (b *Backend) rebalanceLocked() error {
	if b.opt.Static {
		return nil
	}
	for _, lv := range []int8{Hot, Warm} {
		max := b.opt.HotPages
		if lv == Warm {
			max = b.opt.WarmPages
		}
		for b.lrus[lv].len() > max {
			po, ok := b.lrus[lv].back()
			if !ok {
				break
			}
			if err := b.movePage(po, lv, lv+1); err != nil {
				return err
			}
			// The victim was resident in the hotter tier until now, so
			// it is the warmest page its new tier holds: front, not
			// back — demotion must preserve the recency order.
			b.setLevel(po, lv+1, false)
			b.demotions++
			gDemotions.Add(1)
		}
	}
	return nil
}

// PageSize implements store.Backend.
func (b *Backend) PageSize() int { return int(b.ps) }

// ReadAt implements store.Backend. A hit in the warm or cold tier
// climbs the page one tier (a refault is proof of reuse, and repeated
// refaults ratchet a page up to hot) unless the backend is Static.
func (b *Backend) ReadAt(off int64, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return store.ErrClosed
	}
	scratch := make([]byte, b.ps)
	return forEachPage(b.ps, off, int64(len(buf)), func(po, pb, bufOff, n int64) error {
		lv, ok := b.level[po]
		if !ok {
			clear(buf[bufOff : bufOff+n])
			return nil
		}
		switch lv {
		case Hot:
			b.hotReads++
			b.lrus[Hot].touch(po)
			return b.tiers[Hot].ReadAt(po+pb, buf[bufOff:bufOff+n])
		case Warm:
			b.warmReads++
		default:
			b.coldReads++
		}
		if err := b.tiers[lv].ReadAt(po, scratch); err != nil {
			return err
		}
		copy(buf[bufOff:bufOff+n], scratch[pb:pb+n])
		if b.opt.Static {
			return nil
		}
		return b.promote(po, lv, scratch)
	})
}

// WriteAt implements store.Backend. Writes are placement-neutral: a
// write is usually an eviction push-out — the VM has just decided the
// page is its coldest — so it must not displace pages whose reuse the
// refault path has proven. New pages stage into the warm tier (front:
// the most recently pushed-out page is the likeliest to refault soon)
// and earn the hot tier only by being read back; tracked pages are
// written strictly in place, without even an LRU touch — push-outs ride
// an async writeback engine, and recency must not depend on its
// scheduling. The eviction notice that accompanies a push-out freshens
// the page's LRU slot deterministically when the advice drain runs.
func (b *Backend) WriteAt(off int64, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return store.ErrClosed
	}
	return forEachPage(b.ps, off, int64(len(data)), func(po, pb, bufOff, n int64) error {
		lv, ok := b.level[po]
		if !ok {
			lv = Warm
			if b.opt.Static {
				lv = b.staticLevel(po)
			}
			if err := b.tiers[lv].WriteAt(po+pb, data[bufOff:bufOff+n]); err != nil {
				return err
			}
			b.setLevel(po, lv, false)
			return b.rebalanceLocked()
		}
		return b.tiers[lv].WriteAt(po+pb, data[bufOff:bufOff+n])
	})
}

// Truncate implements store.Backend.
func (b *Backend) Truncate(size int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return store.ErrClosed
	}
	for po := range b.level {
		if po >= size {
			b.dropLevel(po)
		}
	}
	for _, tb := range b.tiers {
		if err := tb.Truncate(size); err != nil {
			return err
		}
	}
	b.adviceMu.Lock()
	for po := range b.sink {
		if po >= size {
			delete(b.sink, po)
		}
	}
	b.adviceMu.Unlock()
	return nil
}

// Sync implements store.Backend: drain pending advice (so Engine.Flush
// settles migrations too), then sync every tier.
func (b *Backend) Sync() error {
	if err := b.MigrateNow(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return store.ErrClosed
	}
	for _, tb := range b.tiers {
		if err := tb.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Pages implements store.Backend.
func (b *Backend) Pages() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.level)
}

// DiscardPage implements store.Discarder.
func (b *Backend) DiscardPage(off int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return store.ErrClosed
	}
	po := off &^ (b.ps - 1)
	if lv, ok := b.level[po]; ok {
		if err := b.tiers[lv].(store.Discarder).DiscardPage(po); err != nil {
			return err
		}
		b.dropLevel(po)
	}
	return nil
}

// PageOffsets implements store.PageLister.
func (b *Backend) PageOffsets() []int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	offs := make([]int64, 0, len(b.level))
	for po := range b.level {
		offs = append(offs, po)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

// Advise implements store.Adviser: the replacement policy's signal
// stream. It only enqueues — callers hold VM locks, and migration I/O
// happens later, under MigrateNow or the async migrator. The two grades
// act differently when drained: AdviseCold (an eviction) is a victim-
// cache insert — the page just left the VM, making it the freshest
// refault candidate, so it climbs to warm; AdviseIdle (resident a whole
// harvest tick without a reference) sinks the page a tier. Idle is
// the stronger signal and wins when both are pending.
func (b *Backend) Advise(off, size int64, a store.Advice) {
	if b.opt.Static {
		return
	}
	b.adviceMu.Lock()
	defer b.adviceMu.Unlock()
	switch a {
	case store.AdviseCold:
		b.advisedCold++
	case store.AdviseIdle:
		b.advisedIdle++
	default:
		return
	}
	end := off + size
	for po := off &^ (b.ps - 1); po < end; po += b.ps {
		if prev, ok := b.sink[po]; !ok || prev != store.AdviseIdle {
			b.sink[po] = a
		}
	}
}

// MigrateNow drains the advice sink — evicted pages are victim-cache
// inserted into warm, idle pages sink one tier — then enforces the
// watermarks. The async migrator calls it on a ticker; Sync calls it
// inline.
func (b *Backend) MigrateNow() error {
	b.adviceMu.Lock()
	pending := b.sink
	b.sink = make(map[int64]store.Advice)
	b.adviceMu.Unlock()
	offs := make([]int64, 0, len(pending))
	for po := range pending {
		offs = append(offs, po)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return store.ErrClosed
	}
	for _, po := range offs {
		lv, ok := b.level[po]
		if !ok {
			continue
		}
		switch pending[po] {
		case store.AdviseCold:
			// Exclusive-cache placement: the page just left the VM, so
			// it is the likeliest page in the whole store to refault
			// next. Cold pages climb to warm; warmer pages are
			// refreshed in their LRU.
			if lv == Cold {
				if err := b.movePage(po, Cold, Warm); err != nil {
					return err
				}
				b.setLevel(po, Warm, false)
				b.promotions++
				gPromotions.Add(1)
			} else {
				b.lrus[lv].touch(po)
			}
		case store.AdviseIdle:
			if lv >= Cold {
				continue
			}
			if err := b.movePage(po, lv, lv+1); err != nil {
				return err
			}
			b.setLevel(po, lv+1, true)
			b.demotions++
			gDemotions.Add(1)
		}
	}
	return b.rebalanceLocked()
}

// StartMigrator runs MigrateNow on a ticker until StopMigrator (or
// Close). Idempotent: starting a running migrator is a no-op.
func (b *Backend) StartMigrator(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	b.migMu.Lock()
	defer b.migMu.Unlock()
	if b.migStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	b.migStop, b.migDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				// Errors here resurface on the next Sync; a closed
				// backend just means Stop is racing us.
				_ = b.MigrateNow()
			}
		}
	}()
}

// StopMigrator stops the async migrator and waits for it to exit.
// Idempotent: stopping a stopped (or never-started) migrator is a
// no-op.
func (b *Backend) StopMigrator() {
	b.migMu.Lock()
	stop, done := b.migStop, b.migDone
	b.migStop, b.migDone = nil, nil
	b.migMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Close implements store.Backend: stop the migrator, optionally flush
// everything cold (persistent composition), close every tier.
func (b *Backend) Close() error {
	b.StopMigrator()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	var firstErr error
	if b.opt.FlushColdOnClose {
		offs := make([]int64, 0, len(b.level))
		for po, lv := range b.level {
			if lv < Cold {
				offs = append(offs, po)
			}
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for _, po := range offs {
			if err := b.movePage(po, b.level[po], Cold); err != nil {
				firstErr = err
				break
			}
			b.setLevel(po, Cold, true)
		}
	}
	for _, tb := range b.tiers {
		if err := tb.Close(); firstErr == nil && err != nil {
			firstErr = err
		}
	}
	b.closed = true
	return firstErr
}

// Stats is a point-in-time snapshot of one tiered backend.
type Stats struct {
	HotPages, WarmPages, ColdPages int    // resident pages per tier
	Promotions, Demotions          uint64 // pages moved up / down
	HotReads, WarmReads, ColdReads uint64 // page reads served per tier
	AdvisedCold, AdvisedIdle       uint64 // advice received
}

// Stats snapshots the backend's counters and per-tier residency.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	s := Stats{
		Promotions: b.promotions, Demotions: b.demotions,
		HotReads: b.hotReads, WarmReads: b.warmReads, ColdReads: b.coldReads,
	}
	for _, lv := range b.level {
		switch lv {
		case Hot:
			s.HotPages++
		case Warm:
			s.WarmPages++
		default:
			s.ColdPages++
		}
	}
	b.mu.Unlock()
	b.adviceMu.Lock()
	s.AdvisedCold, s.AdvisedIdle = b.advisedCold, b.advisedIdle
	b.adviceMu.Unlock()
	return s
}

// ResetStats zeroes the instance counters (residency is state, not a
// counter, and is unaffected). Benchmarks call it after warm-up so the
// reported migrations cover only the measured interval. The process-wide
// GlobalCounters are monotonic and not reset.
func (b *Backend) ResetStats() {
	b.mu.Lock()
	b.promotions, b.demotions = 0, 0
	b.hotReads, b.warmReads, b.coldReads = 0, 0, 0
	b.mu.Unlock()
	b.adviceMu.Lock()
	b.advisedCold, b.advisedIdle = 0, 0
	b.adviceMu.Unlock()
}

// Counters are the process-wide monotonic tier totals, mirrored into
// core.Stats so every tool's stats line shows migration activity.
type Counters struct {
	Promotions    uint64
	Demotions     uint64
	RemoteRetries uint64
}

var (
	gPromotions    atomic.Uint64
	gDemotions     atomic.Uint64
	gRemoteRetries atomic.Uint64
)

// GlobalCounters snapshots the process-wide tier totals.
func GlobalCounters() Counters {
	return Counters{
		Promotions:    gPromotions.Load(),
		Demotions:     gDemotions.Load(),
		RemoteRetries: gRemoteRetries.Load(),
	}
}

// lruList is a recency list over page offsets: front is hottest.
type lruList struct {
	l  *list.List
	el map[int64]*list.Element
}

func newLRUList() *lruList {
	return &lruList{l: list.New(), el: make(map[int64]*list.Element)}
}

func (u *lruList) touch(po int64) {
	if e, ok := u.el[po]; ok {
		u.l.MoveToFront(e)
		return
	}
	u.el[po] = u.l.PushFront(po)
}

func (u *lruList) toBack(po int64) {
	if e, ok := u.el[po]; ok {
		u.l.MoveToBack(e)
		return
	}
	u.el[po] = u.l.PushBack(po)
}

func (u *lruList) remove(po int64) {
	if e, ok := u.el[po]; ok {
		u.l.Remove(e)
		delete(u.el, po)
	}
}

func (u *lruList) back() (int64, bool) {
	e := u.l.Back()
	if e == nil {
		return 0, false
	}
	return e.Value.(int64), true
}

func (u *lruList) len() int { return u.l.Len() }

// forEachPage splits [off, off+n) into per-page pieces: fn(po, pb,
// bufOff, n) with po the page offset, pb the offset within the page,
// bufOff the offset within the caller's buffer.
func forEachPage(ps, off, n int64, fn func(po, pb, bufOff, n int64) error) error {
	for bufOff := int64(0); bufOff < n; {
		po := (off + bufOff) &^ (ps - 1)
		pb := (off + bufOff) - po
		c := ps - pb
		if rem := n - bufOff; c > rem {
			c = rem
		}
		if err := fn(po, pb, bufOff, c); err != nil {
			return err
		}
		bufOff += c
	}
	return nil
}
