package tier_test

import (
	"path/filepath"
	"testing"
	"time"

	"chorusvm/internal/leakcheck"
	"chorusvm/internal/store"
	"chorusvm/internal/store/storetest"
	"chorusvm/internal/tier"
)

// TestConformance runs the shared store battery over the tiered
// compositions: volatile, persistent (journaled cold tier), static
// placement, and degenerate watermarks that force every page through
// the demotion machinery.
func TestConformance(t *testing.T) {
	cases := []struct {
		name string
		mk   storetest.Maker
	}{
		{"tiered", func(t *testing.T, ps int) store.Backend {
			return tier.NewDefault(ps, tier.Options{})
		}},
		{"tiered(static)", func(t *testing.T, ps int) store.Backend {
			return tier.NewDefault(ps, tier.Options{Static: true})
		}},
		// Tiny watermarks: every write overflows hot into warm into
		// cold, so the conformance content rides the full migration
		// path.
		{"tiered(hot=1,warm=1)", func(t *testing.T, ps int) store.Backend {
			return tier.NewDefault(ps, tier.Options{HotPages: 1, WarmPages: 1})
		}},
		{"tiered(persistent)", func(t *testing.T, ps int) store.Backend {
			b, err := tier.NewPersistent(filepath.Join(t.TempDir(), "cold"), ps, tier.Options{})
			if err != nil {
				t.Fatalf("NewPersistent: %v", err)
			}
			return b
		}},
	}
	for _, bc := range cases {
		t.Run(bc.name, func(t *testing.T) { storetest.Run(t, bc.mk) })
	}
}

// TestPersistentReopen proves close/reopen persistence of the whole
// composition: FlushColdOnClose pushes hot and warm content into the
// journaled cold tier, and a reopen adopts it.
func TestPersistentReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cold")
	storetest.RunReopen(t, func(t *testing.T) store.Backend {
		b, err := tier.NewPersistent(path, storetest.PageSize, tier.Options{})
		if err != nil {
			t.Fatalf("NewPersistent: %v", err)
		}
		return b
	})
}

const ps = storetest.PageSize

// TestPlacementAndWatermarks checks the placement rules directly: new
// pages stage into warm, overflow demotes LRU-first, and only reads
// from colder tiers promote — a write never earns the hot tier.
func TestPlacementAndWatermarks(t *testing.T) {
	b := tier.NewDefault(ps, tier.Options{HotPages: 2, WarmPages: 2})
	defer b.Close()

	// Four pages: all enter warm; the 2 oldest overflow to cold. The hot
	// tier stays empty — no page has proven reuse yet.
	for i := int64(0); i < 4; i++ {
		if err := b.WriteAt(i*ps, storetest.Pattern(byte(i+1), ps)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	}
	s := b.Stats()
	if s.HotPages != 0 || s.WarmPages != 2 || s.ColdPages != 2 {
		t.Fatalf("residency = %d/%d/%d, want 0/2/2", s.HotPages, s.WarmPages, s.ColdPages)
	}
	if s.Demotions != 2 {
		t.Fatalf("Demotions = %d, want 2", s.Demotions)
	}

	// Read page 3 back (warm): the refault promotes it to hot.
	got := make([]byte, ps)
	if err := b.ReadAt(3*ps, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	s = b.Stats()
	if s.WarmReads != 1 || s.Promotions != 1 {
		t.Fatalf("WarmReads/Promotions = %d/%d, want 1/1", s.WarmReads, s.Promotions)
	}
	if s.HotPages != 1 || s.WarmPages != 1 || s.ColdPages != 2 {
		t.Fatalf("residency = %d/%d/%d, want 1/1/2", s.HotPages, s.WarmPages, s.ColdPages)
	}

	// Refault page 0 (cold): the climb is one tier per read, so it lands
	// warm, and its content must have survived the migrations.
	if err := b.ReadAt(0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for i, v := range got {
		if v != storetest.Pattern(1, ps)[i] {
			t.Fatalf("byte %d corrupted across migrations", i)
		}
	}
	s = b.Stats()
	if s.ColdReads != 1 {
		t.Fatalf("ColdReads = %d, want 1", s.ColdReads)
	}
	if s.Promotions != 2 {
		t.Fatalf("Promotions = %d, want 2", s.Promotions)
	}
	if s.HotPages != 1 || s.WarmPages != 2 || s.ColdPages != 1 {
		t.Fatalf("post-promote residency = %d/%d/%d, want 1/2/1", s.HotPages, s.WarmPages, s.ColdPages)
	}

	// A write to a tracked page stays in place: no migration, no
	// demotion, whatever the tier.
	if err := b.WriteAt(3*ps, storetest.Pattern(9, ps)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	s2 := b.Stats()
	if s2.Promotions != s.Promotions || s2.Demotions != s.Demotions {
		t.Fatalf("write to a hot page migrated: %+v vs %+v", s2, s)
	}
}

// TestAdviseSinks checks the policy's advice signals: AdviseCold (an
// eviction notice) victim-inserts a cold page into the warm tier,
// AdviseIdle sinks a page one tier, and neither path loses content.
func TestAdviseSinks(t *testing.T) {
	b := tier.NewDefault(ps, tier.Options{HotPages: 2, WarmPages: 2})
	defer b.Close()
	for i := int64(0); i < 4; i++ {
		if err := b.WriteAt(i*ps, storetest.Pattern(byte(i+1), ps)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	}
	// Pages 0 and 1 overflowed into cold. An eviction notice for page 0
	// victim-inserts it into warm: the VM just gave the page up, which
	// makes it the likeliest page in the store to refault next.
	b.Advise(0, ps, store.AdviseCold)
	if err := b.MigrateNow(); err != nil {
		t.Fatalf("MigrateNow: %v", err)
	}
	s := b.Stats()
	if s.Promotions != 1 || s.Demotions != 3 {
		t.Fatalf("victim insert: promotions/demotions = %d/%d, want 1/3", s.Promotions, s.Demotions)
	}
	// The refault the insert predicted is now a warm read, not a cold
	// one, and the second touch climbs the page to hot.
	got := make([]byte, ps)
	if err := b.ReadAt(0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	s = b.Stats()
	if s.WarmReads != 1 || s.ColdReads != 0 {
		t.Fatalf("victim-inserted page read from the wrong tier: %+v", s)
	}
	if s.HotPages != 1 {
		t.Fatalf("refault after victim insert did not reach hot: %+v", s)
	}
	if got[1] != storetest.Pattern(1, ps)[1] {
		t.Fatalf("content corrupted by victim insert")
	}
	// AdviseIdle sinks outright: page 0 drops hot -> warm on the drain.
	b.Advise(0, ps, store.AdviseIdle)
	if err := b.MigrateNow(); err != nil {
		t.Fatalf("MigrateNow: %v", err)
	}
	s = b.Stats()
	if s.HotPages != 0 {
		t.Fatalf("AdviseIdle did not sink the hot page: %+v", s)
	}
	if s.AdvisedCold != 1 || s.AdvisedIdle != 1 {
		t.Fatalf("advice counters = %d/%d, want 1/1", s.AdvisedCold, s.AdvisedIdle)
	}
	if err := b.ReadAt(0, got); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if got[1] != storetest.Pattern(1, ps)[1] {
		t.Fatalf("content corrupted by idle-driven migration")
	}
}

// TestStaticNeverMigrates pins the ablation baseline: static placement
// ignores advice and never promotes or demotes.
func TestStaticNeverMigrates(t *testing.T) {
	b := tier.NewDefault(ps, tier.Options{HotPages: 1, WarmPages: 1, Static: true})
	defer b.Close()
	for i := int64(0); i < 4; i++ {
		if err := b.WriteAt(i*ps, storetest.Pattern(byte(i+1), ps)); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
	}
	b.Advise(0, 4*ps, store.AdviseCold)
	if err := b.MigrateNow(); err != nil {
		t.Fatalf("MigrateNow: %v", err)
	}
	got := make([]byte, ps)
	for i := int64(0); i < 4; i++ {
		if err := b.ReadAt(i*ps, got); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
	}
	s := b.Stats()
	if s.Promotions != 0 || s.Demotions != 0 {
		t.Fatalf("static backend migrated: %d promotions, %d demotions", s.Promotions, s.Demotions)
	}
	if s.HotPages != 1 || s.WarmPages != 1 || s.ColdPages != 2 {
		t.Fatalf("static residency = %d/%d/%d, want 1/1/2", s.HotPages, s.WarmPages, s.ColdPages)
	}
	if s.ColdReads != 2 {
		t.Fatalf("static ColdReads = %d, want 2 (no promote-on-read)", s.ColdReads)
	}
}

// TestMigratorLifecycle checks the async migrator's daemon
// conventions: leak-free, idempotent start and stop, migration happens
// in the background.
func TestMigratorLifecycle(t *testing.T) {
	leakcheck.Check(t)
	b := tier.NewDefault(ps, tier.Options{HotPages: 8, WarmPages: 8})
	defer b.Close()

	b.StartMigrator(time.Millisecond)
	b.StartMigrator(time.Millisecond) // idempotent: second start is a no-op

	if err := b.WriteAt(0, storetest.Pattern(1, ps)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	b.Advise(0, ps, store.AdviseIdle)
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().ColdPages != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("migrator never drained the advice sink")
		}
		time.Sleep(time.Millisecond)
	}

	b.StopMigrator()
	b.StopMigrator() // idempotent

	// Advice after stop sits in the sink until a Sync drains it inline.
	if err := b.WriteAt(ps, storetest.Pattern(2, ps)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	b.Advise(ps, ps, store.AdviseIdle)
	if err := b.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := b.Stats().ColdPages; got != 2 {
		t.Fatalf("ColdPages = %d, want 2 after Sync drain", got)
	}
}

// TestCloseStopsMigrator checks Close alone winds the daemon down.
func TestCloseStopsMigrator(t *testing.T) {
	leakcheck.Check(t)
	b := tier.NewDefault(ps, tier.Options{})
	b.StartMigrator(time.Millisecond)
	if err := b.WriteAt(0, storetest.Pattern(1, ps)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
